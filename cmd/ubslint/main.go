// Command ubslint checks the repository's simulator invariants with the
// nine-analyzer go/analysis suite in internal/analysis: six syntactic
// rules (misspath, statsexhaustive, determinism, hotpathalloc,
// atomicfield, snapstate) and three CFG-dataflow rules (wallclocktaint,
// ctxleak, mutexguard).
//
// It speaks the go vet tool protocol, so the low-level invocation is
//
//	go build -o /tmp/ubslint ./cmd/ubslint
//	go vet -vettool=/tmp/ubslint ./...
//
// Invoking it directly with package patterns runs the multichecker
// driver: it re-execs the go command with itself as the vet tool,
// parses the diagnostics, subtracts the committed baseline, and renders
// the survivors:
//
//	ubslint ./...                     # human-readable, exit 1 on findings
//	ubslint -json ./...               # machine-readable JSON findings
//	ubslint -sarif ./...              # SARIF 2.1.0 (CI code-scanning upload)
//	ubslint -write-baseline ./...     # regenerate lint/baseline.json
//	ubslint -misspath ./internal/...  # run a single analyzer
//
// The baseline (default lint/baseline.json under the module root, or
// -baseline <path>) holds known findings as {analyzer, file, message}
// fingerprints — line numbers are deliberately excluded so unrelated
// edits do not shift the baseline. Findings covered by the baseline are
// suppressed; anything new exits 1; stale entries (baselined findings
// that no longer fire) are reported to stderr so the baseline only ever
// shrinks deliberately.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ubscache/internal/analysis/ubslint"
)

func main() {
	args := os.Args[1:]
	// Vet-tool invocations end in a *.cfg file (and the go command's
	// protocol probes are flag-only: -flags, -V=full). Anything with a
	// trailing package pattern is a human: run the driver.
	if len(args) > 0 && !strings.HasSuffix(args[len(args)-1], ".cfg") && !strings.HasPrefix(args[len(args)-1], "-") {
		os.Exit(driver(args))
	}
	unitchecker.Main(ubslint.Analyzers()...)
}

// finding is one diagnostic after normalization: File is repo-relative.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
	// Baselined marks findings fingerprinted in the baseline; they are
	// suppressed from output and do not affect the exit status.
	Baselined bool `json:"baselined,omitempty"`
}

// fingerprint is the baseline identity: no line numbers, so edits that
// only move code do not invalidate entries.
type fingerprint struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// baselineFile is the lint/baseline.json schema.
type baselineFile struct {
	Schema  int             `json:"schema"`
	Entries []baselineEntry `json:"entries"`
}

type baselineEntry struct {
	fingerprint
	Count int `json:"count"`
}

type options struct {
	jsonOut       bool
	sarifOut      bool
	writeBaseline bool
	baselinePath  string
	rest          []string // analyzer flags + package patterns, forwarded to go vet
}

func parseArgs(args []string) options {
	opt := options{}
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-json" || a == "--json":
			opt.jsonOut = true
		case a == "-sarif" || a == "--sarif":
			opt.sarifOut = true
		case a == "-write-baseline" || a == "--write-baseline":
			opt.writeBaseline = true
		case a == "-baseline" || a == "--baseline":
			if i+1 < len(args) {
				i++
				opt.baselinePath = args[i]
			}
		case strings.HasPrefix(a, "-baseline="):
			opt.baselinePath = strings.TrimPrefix(a, "-baseline=")
		case strings.HasPrefix(a, "--baseline="):
			opt.baselinePath = strings.TrimPrefix(a, "--baseline=")
		default:
			opt.rest = append(opt.rest, a)
		}
	}
	return opt
}

func driver(args []string) int {
	opt := parseArgs(args)

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubslint: %v\n", err)
		return 2
	}
	if opt.baselinePath == "" {
		opt.baselinePath = filepath.Join(root, "lint", "baseline.json")
	}

	findings, errOut, err := runVet(opt.rest, root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubslint: %v\n%s", err, errOut)
		return 2
	}

	if opt.writeBaseline {
		if err := writeBaseline(opt.baselinePath, findings); err != nil {
			fmt.Fprintf(os.Stderr, "ubslint: %v\n", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "ubslint: wrote %d entr%s to %s\n",
			len(findings), plural(len(findings), "y", "ies"), opt.baselinePath)
		return 0
	}

	stale := applyBaseline(opt.baselinePath, findings)
	for _, s := range stale {
		fmt.Fprintf(os.Stderr, "ubslint: stale baseline entry (no longer fires): %s %s: %s\n",
			s.Analyzer, s.File, s.Message)
	}

	fresh := 0
	for _, f := range findings {
		if !f.Baselined {
			fresh++
		}
	}

	switch {
	case opt.sarifOut:
		emitSARIF(os.Stdout, findings, root)
	case opt.jsonOut:
		emitJSON(os.Stdout, findings)
	default:
		for _, f := range findings {
			if f.Baselined {
				continue
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", f.File, f.Line, f.Column, f.Message, f.Analyzer)
		}
	}
	if fresh > 0 {
		fmt.Fprintf(os.Stderr, "ubslint: %d unbaselined finding%s\n", fresh, plural(fresh, "", "s"))
		return 1
	}
	return 0
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// moduleRoot resolves the main module's directory.
func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("go list -m: %w", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// runVet re-execs `go vet -vettool=self -json` over the forwarded args
// and parses the diagnostic stream. The raw stderr is returned for
// error reporting: with -json, vet reserves stderr for build failures
// and the interleaved `# pkg` progress comments.
func runVet(rest []string, root string) ([]finding, string, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, "", err
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe, "-json"}, rest...)
	cmd := exec.Command("go", vetArgs...)
	var out, errBuf strings.Builder
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	runErr := cmd.Run()

	findings, parseErr := parseVetJSON(strings.NewReader(errBuf.String()+out.String()), root)
	if parseErr != nil {
		if runErr != nil {
			return nil, errBuf.String(), runErr
		}
		return nil, errBuf.String(), parseErr
	}
	// vet -json exits 0 even with diagnostics; a non-zero exit with a
	// parseable stream means a build/type error worth surfacing.
	if runErr != nil && len(findings) == 0 {
		return nil, errBuf.String(), runErr
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, errBuf.String(), nil
}

// parseVetJSON decodes `go vet -json` output: `# pkg` comment lines
// interleaved with a sequence of {pkg: {analyzer: [diagnostics]}}
// objects.
func parseVetJSON(r io.Reader, root string) ([]finding, error) {
	var jsonText strings.Builder
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		jsonText.WriteString(line)
		jsonText.WriteString("\n")
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	type diag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	var findings []finding
	dec := json.NewDecoder(strings.NewReader(jsonText.String()))
	for dec.More() {
		var byPkg map[string]map[string][]diag
		if err := dec.Decode(&byPkg); err != nil {
			return nil, fmt.Errorf("parsing vet -json output: %w", err)
		}
		for _, byAnalyzer := range byPkg {
			for analyzer, diags := range byAnalyzer {
				for _, d := range diags {
					file, line, col := splitPosn(d.Posn)
					if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
						file = filepath.ToSlash(rel)
					}
					findings = append(findings, finding{
						Analyzer: analyzer, File: file, Line: line, Column: col,
						Message: d.Message,
					})
				}
			}
		}
	}
	return findings, nil
}

// splitPosn parses "path/file.go:12:34" (column optional).
func splitPosn(posn string) (file string, line, col int) {
	file = posn
	if i := strings.LastIndexByte(file, ':'); i >= 0 {
		if n, err := strconv.Atoi(file[i+1:]); err == nil {
			col = n
			file = file[:i]
			if j := strings.LastIndexByte(file, ':'); j >= 0 {
				if m, err := strconv.Atoi(file[j+1:]); err == nil {
					line, col = m, n
					file = file[:j]
					return
				}
			}
			line, col = n, 0
		}
	}
	return
}

// applyBaseline consumes baseline entries against findings (marking the
// covered ones Baselined) and returns the stale leftovers. A missing or
// unreadable baseline suppresses nothing.
func applyBaseline(path string, findings []finding) []baselineEntry {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var bf baselineFile
	if err := json.Unmarshal(data, &bf); err != nil {
		fmt.Fprintf(os.Stderr, "ubslint: ignoring malformed baseline %s: %v\n", path, err)
		return nil
	}
	remaining := map[fingerprint]int{}
	for _, e := range bf.Entries {
		remaining[e.fingerprint] += e.Count
	}
	for i := range findings {
		fp := fingerprint{Analyzer: findings[i].Analyzer, File: findings[i].File, Message: findings[i].Message}
		if remaining[fp] > 0 {
			remaining[fp]--
			findings[i].Baselined = true
		}
	}
	var stale []baselineEntry
	for fp, n := range remaining {
		if n > 0 {
			stale = append(stale, baselineEntry{fingerprint: fp, Count: n})
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, b := stale[i], stale[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return stale
}

// writeBaseline regenerates the baseline from the current findings.
func writeBaseline(path string, findings []finding) error {
	counts := map[fingerprint]int{}
	for _, f := range findings {
		counts[fingerprint{Analyzer: f.Analyzer, File: f.File, Message: f.Message}]++
	}
	bf := baselineFile{Schema: 1, Entries: []baselineEntry{}}
	for fp, n := range counts {
		bf.Entries = append(bf.Entries, baselineEntry{fingerprint: fp, Count: n})
	}
	sort.Slice(bf.Entries, func(i, j int) bool {
		a, b := bf.Entries[i], bf.Entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(&bf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// emitJSON renders the unbaselined findings as a JSON array.
func emitJSON(w io.Writer, findings []finding) {
	out := []finding{}
	for _, f := range findings {
		if !f.Baselined {
			out = append(out, f)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}

// SARIF 2.1.0 — the minimal subset GitHub code scanning ingests.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// emitSARIF renders the unbaselined findings as a SARIF run whose rule
// table is the full analyzer roster (so a clean run still names the
// rules that were checked).
func emitSARIF(w io.Writer, findings []finding, root string) {
	var rules []sarifRule
	for _, a := range ubslint.Analyzers() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: doc}})
	}
	results := []sarifResult{}
	for _, f := range findings {
		if f.Baselined {
			continue
		}
		line := f.Line
		if line <= 0 {
			line = 1
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(f.File), URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: line, StartColumn: f.Column},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "ubslint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(&log)
}

// Command ubslint checks the repository's simulator invariants with the
// go/analysis suite in internal/analysis (misspath, statsexhaustive,
// determinism, hotpathalloc, atomicfield).
//
// It speaks the go vet tool protocol, so the canonical invocation is
//
//	go build -o /tmp/ubslint ./cmd/ubslint
//	go vet -vettool=/tmp/ubslint ./...
//
// As a convenience, invoking it directly with package patterns re-execs
// the go command with itself as the vet tool:
//
//	ubslint ./...
//	ubslint -misspath ./internal/...   # run a single analyzer
//
// Exit status is non-zero when any diagnostic is reported.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"ubscache/internal/analysis/ubslint"
)

func main() {
	args := os.Args[1:]
	// Vet-tool invocations end in a *.cfg file (and the go command's
	// protocol probes are flag-only: -flags, -V=full). Anything with a
	// trailing package pattern is a human: delegate package loading to
	// `go vet` with ourselves as the tool.
	if len(args) > 0 && !strings.HasSuffix(args[len(args)-1], ".cfg") && !strings.HasPrefix(args[len(args)-1], "-") {
		os.Exit(delegate(args))
	}
	unitchecker.Main(ubslint.Analyzers()...)
}

func delegate(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ubslint: %v\n", err)
		return 1
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "ubslint: %v\n", err)
		return 1
	}
	return 0
}

// Command ubsd is the simulation-as-a-service daemon: a long-lived,
// multi-tenant server that accepts simulation jobs over an HTTP JSON API,
// executes them on a bounded worker pool backed by the runner's
// content-hashed memoizing store (identical specs dedupe to one
// execution; a -cache directory survives restarts), and streams per-job
// progress as server-sent events.
//
//	ubsd -addr :8337 -cache /var/cache/ubsd
//
//	# submit a job
//	curl -s -X POST localhost:8337/jobs \
//	  -d '{"design":"ubs","workload":"server_001","priority":"interactive"}'
//	# tail its progress
//	curl -N localhost:8337/jobs/job-000001/events
//	# fetch the result / cancel
//	curl -s localhost:8337/jobs/job-000001/result
//	curl -s -X DELETE localhost:8337/jobs/job-000001
//	# park a running job and bring it back later (with -checkpoint-every
//	# its partial progress persists and the retry resumes from disk)
//	curl -s -X POST localhost:8337/jobs/job-000001/suspend
//	curl -s -X POST localhost:8337/jobs/job-000001/resume
//
// Service behavior under load: each priority class ("interactive" >
// "batch") has a bounded queue, and submissions beyond the bound are
// rejected immediately with 429 + Retry-After instead of queueing without
// limit. An interactive arrival that finds every worker busy preempts a
// running batch job — suspended, not cancelled — and the scheduler
// resumes it once a worker frees up. SIGTERM/SIGINT begin a graceful drain — /readyz flips to 503,
// admission stops, queued and in-flight jobs finish (force-cancelled only
// after -drain-timeout) — and the process exits 0. Service metrics (queue
// depth, jobs in-flight, per-priority admission/rejection counters,
// per-design latency histograms) are served at /metrics in the
// Prometheus text format; /healthz and /readyz serve the probes.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ubscache/internal/runner"
	"ubscache/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr         = flag.String("addr", ":8337", "HTTP listen address (use 127.0.0.1:0 for an ephemeral port)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		qInteractive = flag.Int("queue-interactive", 64, "interactive-class admission bound (queued jobs)")
		qBatch       = flag.Int("queue-batch", 256, "batch-class admission bound (queued jobs)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on saturation rejections")
		cacheDir     = flag.String("cache", "", "disk-resumable result cache directory (empty = memory only)")
		hbEvery      = flag.Uint64("hb", 0, "per-job heartbeat period in cycles (0 = the sampling interval)")
		ckEvery      = flag.Uint64("checkpoint-every", 0, "checkpoint in-flight simulations every N measured instructions so suspended or killed jobs resume from disk (0 = off; requires -cache)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget before in-flight jobs are force-cancelled")
	)
	flag.Parse()

	if *ckEvery > 0 && *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "ubsd: -checkpoint-every requires -cache")
		return 2
	}
	store := runner.NewStore(*cacheDir)
	store.CheckpointEvery = *ckEvery

	srv := serve.New(serve.Config{
		Store:            store,
		Workers:          *workers,
		InteractiveBound: *qInteractive,
		BatchBound:       *qBatch,
		RetryAfter:       *retryAfter,
		HeartbeatEvery:   *hbEvery,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "ubsd: listening on http://%s\n", ln.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)

	select {
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "ubsd: %s received; draining (readiness off, admission stopped)\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "ubsd: serve failed: %v\n", err)
		srv.Close()
		return 1
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "ubsd: drain budget exceeded; in-flight jobs cancelled (%v)\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "ubsd: drained; all jobs terminal")
	}
	// The API stays up through the drain so clients can observe terminal
	// states; shut it down once the pool is idle.
	shutdownCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	httpSrv.Shutdown(shutdownCtx)
	fmt.Fprintln(os.Stderr, "ubsd: exit")
	return 0
}

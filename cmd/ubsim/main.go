// Command ubsim runs one workload on one instruction-cache design and
// prints the detailed result: IPC, MPKI, stall attribution, storage
// efficiency, and (for UBS) the partial-miss taxonomy.
//
//	ubsim -workload server_003 -design ubs
//	ubsim -workload client_001 -design conv:64 -measure 10000000
//	ubsim -workload mix:examples/specs/clients.yaml -design ubs
//	ubsim -workload champsim:trace.champsim.gz -design conv:64
//	ubsim -trace dump.ubst.gz -design ghrp
//
// Designs are resolved through the sim design registry (sim.ParseDesign):
// conv:<KB>, ubs, ubs:<KB>, smallblock16, smallblock32, smallblock64,
// distill, ghrp, acic, the predictor/way variants ubs-pred-<name> and
// ubs-<N>way-c<V>, or an inline JSON spec such as
// '{"kind":"ubs","config":{"kb":64}}'.
//
// Workloads are resolved through the symmetric workload registry
// (workloadspec.ParseWorkload): a bare preset name, preset:<name>,
// mix:<file.yaml|json>, champsim:<trace[.gz]>, trace:<file.ubst[.gz]>, or
// an inline JSON spec such as '{"kind":"preset","config":{"name":"x"}}'.
//
// Observability: -stats-json streams NDJSON heartbeat records (plus a
// final manifest) to a file; -http serves live metrics (Prometheus text at
// /metrics, JSON at /vars) while the run is in flight; -hb sets the
// heartbeat period in cycles. SIGINT/SIGTERM cancel the run cleanly at the
// next heartbeat, flushing the manifest with the partial state.
//
// Checkpointing: -checkpoint-every N writes a resumable checkpoint to
// -checkpoint-dir every N measured instructions (and once more on
// SIGINT/SIGTERM); -resume FILE rebuilds the machine from a checkpoint
// in a fresh process and runs it to completion, with final stats
// byte-identical to the uninterrupted run:
//
//	ubsim -workload server_003 -design ubs -checkpoint-every 1000000
//	ubsim -resume server_003-ubs.ubsc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ubscache/internal/checkpoint"
	"ubscache/internal/core"
	"ubscache/internal/icache"
	"ubscache/internal/obs"
	"ubscache/internal/sim"
	"ubscache/internal/stats"
	"ubscache/internal/trace"
	"ubscache/internal/workloadspec"
)

func main() {
	os.Exit(run())
}

// run carries the real main so deferred writers (profiles, the NDJSON
// stream, the metrics server) fire before exit.
func run() int {
	var (
		wl        = flag.String("workload", "server_001", "workload shorthand: preset name, preset:<name>, mix:<file>, champsim:<trace>, trace:<file>, or inline JSON spec")
		traceFile = flag.String("trace", "", "simulate a UBST trace file instead of a synthetic workload")
		design    = flag.String("design", "ubs", "instruction cache design")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions (0 = default)")
		measure   = flag.Uint64("measure", 0, "measured instructions (0 = default)")
		statsJSON = flag.String("stats-json", "", "stream NDJSON heartbeat records and a final manifest to this file")
		httpAddr  = flag.String("http", "", "serve live metrics over HTTP at this address (e.g. :8080; /metrics, /vars)")
		hbEvery   = flag.Uint64("hb", 0, "heartbeat period in cycles (0 = the sampling interval)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		ckEvery   = flag.Uint64("checkpoint-every", 0, "write a resumable checkpoint every N measured instructions (0 = off)")
		ckDir     = flag.String("checkpoint-dir", ".", "directory for checkpoint files written by -checkpoint-every")
		resume    = flag.String("resume", "", "resume a run from this checkpoint file instead of starting fresh")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	d, err := sim.ParseDesign(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	params := sim.DefaultParams()
	if *warmup > 0 {
		params.Warmup = *warmup
	}
	if *measure > 0 {
		params.Measure = *measure
	}
	params.HeartbeatEvery = *hbEvery

	var observers obs.Observers
	if *statsJSON != "" {
		f, err := os.Create(*statsJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		observers = append(observers, obs.NewNDJSON(f))
	}
	if *httpAddr != "" {
		srv := obs.NewServer()
		addr, stopSrv, err := srv.Start(*httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer stopSrv()
		fmt.Fprintf(os.Stderr, "ubsim: serving metrics on http://%s/metrics\n", addr)
		observers = append(observers, srv)
	}
	if len(observers) > 0 {
		params.Observer = observers
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *resume != "" {
		// A checkpoint file is self-describing (workload, design, params);
		// only the observer wiring and checkpoint cadence come from flags.
		r, err := checkpoint.Resume(ctx, *resume, checkpoint.ResumeOptions{
			Observer:       params.Observer,
			HeartbeatEvery: *hbEvery,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer r.Close()
		fmt.Fprintf(os.Stderr, "ubsim: resuming %s on %s at instruction %d\n",
			r.Meta.WorkloadName, r.Meta.Design, r.Meta.Instructions)
		save := func([]byte) error { return nil }
		if *ckEvery > 0 {
			save = func(data []byte) error { return checkpoint.WriteFileAtomic(*resume, data) }
		}
		res, err := checkpoint.Complete(r.Machine, r.Meta, *ckEvery, save)
		if err != nil {
			return reportRunErr(err, *statsJSON)
		}
		printResult(res)
		return 0
	}

	var res sim.Result
	if *traceFile != "" {
		if *ckEvery > 0 {
			fmt.Fprintln(os.Stderr, "ubsim: -checkpoint-every needs a restartable workload; use -workload trace:FILE instead of -trace")
			return 2
		}
		r, err := trace.Open(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer r.Close()
		res, err = sim.RunSourceContext(ctx, params, r, *traceFile, d.Name, d.Factory)
		if err != nil {
			return reportRunErr(err, *statsJSON)
		}
	} else {
		w, err := workloadspec.ParseWorkload(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if *ckEvery > 0 {
			ckPath := filepath.Join(*ckDir, sanitize(*wl)+"-"+sanitize(*design)+".ubsc")
			fmt.Fprintf(os.Stderr, "ubsim: checkpointing every %d instructions to %s\n", *ckEvery, ckPath)
			src, err := w.NewSource()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			if c, ok := src.(interface{ Close() error }); ok {
				defer c.Close()
			}
			m, err := sim.NewMachine(ctx, params, src, w.Name, d.Name, d.Factory)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			meta := checkpoint.Meta{Workload: w.Spec, WorkloadName: w.Name, Design: *design, Params: params}
			// The checkpoint is kept after success so a longer follow-up run
			// (or the CI smoke test) can still resume from the file.
			res, err = checkpoint.Complete(m, meta, *ckEvery, func(data []byte) error {
				return checkpoint.WriteFileAtomic(ckPath, data)
			})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					fmt.Fprintf(os.Stderr, "ubsim: resume with: ubsim -resume %s\n", ckPath)
				}
				return reportRunErr(err, *statsJSON)
			}
		} else {
			res, err = workloadspec.Run(ctx, params, w, d.Name, d.Factory)
			if err != nil {
				return reportRunErr(err, *statsJSON)
			}
		}
	}
	printResult(res)
	return 0
}

// sanitize maps a workload or design spec to a filesystem-safe filename
// fragment (inline JSON specs and file paths contain separators).
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		}
		return '_'
	}, s)
}

// reportRunErr distinguishes a clean signal-driven cancellation (partial
// observability artifacts were still flushed) from a real failure.
func reportRunErr(err error, statsJSON string) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "ubsim: interrupted; run cancelled at a heartbeat boundary")
		if statsJSON != "" {
			fmt.Fprintf(os.Stderr, "ubsim: partial heartbeat stream and manifest flushed to %s\n", statsJSON)
		}
		return 130
	}
	fmt.Fprintln(os.Stderr, err)
	return 1
}

func printResult(res sim.Result) {
	c := res.Core
	fmt.Printf("workload:  %s\ndesign:    %s\n", res.Workload, res.Design)
	fmt.Printf("instructions: %d  cycles: %d  IPC: %.4f\n", c.Instructions, c.Cycles, c.IPC())
	fmt.Printf("L1-I: fetches=%d hits=%d misses=%d MPKI=%.2f\n",
		res.ICache.Fetches, res.ICache.Hits, res.ICache.Misses, res.MPKI())
	fmt.Printf("      prefetches=%d dropped=%d MSHR-stall-cycles=%d\n",
		res.ICache.Prefetches, res.ICache.PrefetchDrops, res.ICache.MSHRStalls)
	fmt.Printf("fetch stalls (cycles): icache=%d mispredict=%d resteer=%d backpressure=%d ftq=%d\n",
		c.Stalls[core.StallICache], c.Stalls[core.StallMispredict],
		c.Stalls[core.StallResteer], c.Stalls[core.StallBackpressure],
		c.Stalls[core.StallFTQEmpty])
	fmt.Printf("front-end (icache) stall fraction: %s\n", stats.Pct(c.FrontEndStallFraction()))
	fmt.Printf("branches: %d  mispredict MPKI: %.2f  decode resteers: %d\n",
		res.BPU.Branches, res.BPU.MPKI(c.Instructions), res.BPU.DecodeResteers)
	if len(res.EffSamples) > 0 {
		sum := stats.Summarise(res.EffSamples)
		fmt.Printf("storage efficiency: %s\n", sum)
		fmt.Print(stats.RenderViolin("  efficiency", sum, 50))
	}
	if res.UBS != nil {
		u := res.UBS
		fmt.Printf("UBS: predictor-hits=%d way-hits=%d placements=%d salvaged=%d discarded=%d\n",
			u.PredictorHits, u.WayHits, u.Placements, u.SalvagedMoves, u.DiscardedBlocks)
		bk := res.ICache.ByKind
		fmt.Printf("     misses by kind: full=%d missing-sub-block=%d overrun=%d underrun=%d (partial %s)\n",
			bk[icache.FullMiss], bk[icache.MissingSubBlock], bk[icache.Overrun],
			bk[icache.Underrun], stats.Pct(res.ICache.PartialMissFraction()))
	}
}

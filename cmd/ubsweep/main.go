// Command ubsweep regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact (see DESIGN.md §4):
//
//	ubsweep -exp fig10                    # UBS / 64KB speedups over 32KB
//	ubsweep -exp all -per-family 4        # everything, 4 workloads per family
//	ubsweep -exp all -parallel 8 -v       # 8 concurrent simulations, progress/ETA
//	ubsweep -spec examples/specs/perf.json -json -out artifacts
//	ubsweep -list                         # available experiments
//
// Simulation points are deduplicated across experiments and run across
// -parallel workers (internal/runner); rendered tables are byte-identical
// to a sequential run. -json and -out emit machine-readable results.json
// and per-experiment CSV/TXT artifacts; -cache persists results on disk
// so interrupted sweeps resume instead of recomputing.
//
// Run lengths default to the scaled-down harness settings; raise -warmup
// and -measure towards the paper's 50M+50M for full-fidelity runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ubscache/internal/exp"
	"ubscache/internal/runner"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (or 'all')")
		list      = flag.Bool("list", false, "list experiments and exit")
		perFamily = flag.Int("per-family", 0, "workloads per family (0 = all)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions (0 = default)")
		measure   = flag.Uint64("measure", 0, "measured instructions (0 = default)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		specPath  = flag.String("spec", "", "sweep spec JSON file (see examples/specs)")
		outDir    = flag.String("out", "", "directory for per-experiment .txt/.csv artifacts")
		jsonOut   = flag.Bool("json", false, "write results.json (into -out, or the current directory)")
		cacheDir  = flag.String("cache", "", "on-disk result cache directory (resumable sweeps)")
		verbose   = flag.Bool("v", false, "print per-run progress and ETA")
	)
	flag.Parse()

	if *list || (*expID == "" && *specPath == "") {
		fmt.Println("experiments:")
		for _, e := range exp.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
			fmt.Printf("  %-8s paper: %s\n", "", e.Paper)
		}
		if *expID == "" && *specPath == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: ubsweep -exp <id|all> | -spec <file> [-per-family N] [-warmup N] [-measure N] [-parallel N] [-out dir] [-json] [-cache dir]")
			os.Exit(2)
		}
		return
	}

	spec := runner.Spec{}
	if *specPath != "" {
		var err error
		spec, err = runner.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	// Command-line flags override the spec file.
	if *expID != "" {
		spec.Experiments = []string{*expID}
	}
	if *perFamily > 0 {
		spec.PerFamily = *perFamily
	}
	if *parallel > 0 {
		spec.Parallel = *parallel
	}
	if *warmup > 0 {
		spec.Params.Warmup = *warmup
	}
	if *measure > 0 {
		spec.Params.Measure = *measure
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	resultsPath := ""
	if *jsonOut {
		dir := *outDir
		if dir == "" {
			dir = "."
		}
		resultsPath = filepath.Join(dir, "results.json")
	}
	sw := &runner.Sweep{
		Spec:        spec,
		Store:       runner.NewStore(*cacheDir),
		ArtifactDir: *outDir,
		ResultsPath: resultsPath,
	}
	if *verbose {
		sw.Progress = os.Stderr
	}
	outc, err := sw.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, eo := range outc.Experiments {
		fmt.Printf("=== %s — %s\n", eo.Experiment.ID, eo.Experiment.Title)
		fmt.Printf("--- paper: %s\n", eo.Experiment.Paper)
		fmt.Println(eo.Output)
		fmt.Printf("(%s in %.1fs)\n\n", eo.Experiment.ID, eo.Seconds)
	}
	if *verbose && resultsPath != "" {
		fmt.Fprintf(os.Stderr, "runner: wrote %s (%d runs)\n", resultsPath, len(outc.Results.Runs))
	}
}

// Command ubsweep regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact (see DESIGN.md §4):
//
//	ubsweep -exp fig10                    # UBS / 64KB speedups over 32KB
//	ubsweep -exp all -per-family 4        # everything, 4 workloads per family
//	ubsweep -exp all -parallel 8 -v       # 8 concurrent simulations, progress/ETA
//	ubsweep -spec examples/specs/perf.json -json -out artifacts
//	ubsweep -designs ubs:64,conv:128      # custom design comparison vs conv-32KB
//	ubsweep -designs ubs,conv:64 -workload mix:examples/specs/clients.yaml
//	ubsweep -list                         # available experiments
//	ubsweep -bench BENCH_PR2.json         # hot-path microbench suite -> JSON
//	ubsweep -exp all -cpuprofile cpu.out  # pprof the sweep itself
//
// Simulation points are deduplicated across experiments and run across
// -parallel workers (internal/runner); rendered tables are byte-identical
// to a sequential run. -json and -out emit machine-readable results.json
// and per-experiment CSV/TXT artifacts; -cache persists results on disk
// so interrupted sweeps resume instead of recomputing.
//
// Run lengths default to the scaled-down harness settings; raise -warmup
// and -measure towards the paper's 50M+50M for full-fidelity runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"ubscache/internal/bench"
	"ubscache/internal/exp"
	"ubscache/internal/runner"
	"ubscache/internal/sim"
	"ubscache/internal/workloadspec"
)

func main() {
	os.Exit(run())
}

// run carries the real main so deferred profile writers fire before exit.
func run() int {
	var (
		expID     = flag.String("exp", "", "experiment id (or 'all')")
		designsIn = flag.String("designs", "", "comma-separated design shorthands (see ubsim -design); runs a custom comparison vs conv-32KB")
		wlIn      = flag.String("workload", "", "comma-separated workload shorthands (see ubsim -workload) crossed with -designs; default: the preset families")
		list      = flag.Bool("list", false, "list experiments and exit")
		perFamily = flag.Int("per-family", 0, "workloads per family (0 = all)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions (0 = default)")
		measure   = flag.Uint64("measure", 0, "measured instructions (0 = default)")
		parallel  = flag.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		specPath  = flag.String("spec", "", "sweep spec JSON file (see examples/specs)")
		outDir    = flag.String("out", "", "directory for per-experiment .txt/.csv artifacts")
		jsonOut   = flag.Bool("json", false, "write results.json (into -out, or the current directory)")
		cacheDir  = flag.String("cache", "", "on-disk result cache directory (resumable sweeps)")
		verbose   = flag.Bool("v", false, "print per-run progress and ETA")
		benchOut  = flag.String("bench", "", "run the hot-path microbench suite and write a BENCH_*.json report to this file")
		benchBase = flag.String("bench-baseline", "", "embed this earlier BENCH_*.json report as the baseline section")
		benchTag  = flag.String("bench-label", "", "label recorded in the bench report (default: the output filename)")
		cpuProf   = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *benchOut != "" {
		return runBench(*benchOut, *benchBase, *benchTag)
	}

	noSelection := *expID == "" && *specPath == "" && *designsIn == "" && *wlIn == ""
	if *list || noSelection {
		fmt.Println("experiments:")
		for _, e := range exp.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
			fmt.Printf("  %-8s paper: %s\n", "", e.Paper)
		}
		if noSelection && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: ubsweep -exp <id|all> | -spec <file> | -designs <d1,d2,...> [-per-family N] [-warmup N] [-measure N] [-parallel N] [-out dir] [-json] [-cache dir]")
			return 2
		}
		return 0
	}

	spec := runner.Spec{}
	if *specPath != "" {
		var err error
		spec, err = runner.LoadSpec(*specPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	// Command-line flags override the spec file.
	if *expID != "" {
		spec.Experiments = []string{*expID}
	}
	if *designsIn != "" {
		spec.Designs = nil
		if strings.HasPrefix(strings.TrimSpace(*designsIn), "[") {
			// A JSON array of design specs (shorthands with embedded commas,
			// e.g. inline {"kind":...} specs, can't be comma-split).
			if err := json.Unmarshal([]byte(*designsIn), &spec.Designs); err != nil {
				fmt.Fprintln(os.Stderr, "ubsweep: -designs:", err)
				return 1
			}
		} else {
			for _, name := range strings.Split(*designsIn, ",") {
				ds, err := sim.ParseDesignSpec(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				spec.Designs = append(spec.Designs, ds)
			}
		}
	}
	if *wlIn != "" {
		spec.Workloads = nil
		if strings.HasPrefix(strings.TrimSpace(*wlIn), "[") {
			// A JSON array of workload specs (shorthands with embedded
			// commas, e.g. inline {"kind":...} specs, can't be comma-split).
			if err := json.Unmarshal([]byte(*wlIn), &spec.Workloads); err != nil {
				fmt.Fprintln(os.Stderr, "ubsweep: -workload:", err)
				return 1
			}
		} else {
			for _, name := range strings.Split(*wlIn, ",") {
				ws, err := workloadspec.ParseWorkloadSpec(strings.TrimSpace(name))
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					return 1
				}
				spec.Workloads = append(spec.Workloads, ws)
			}
		}
	}
	if *perFamily > 0 {
		spec.PerFamily = *perFamily
	}
	if *parallel > 0 {
		spec.Parallel = *parallel
	}
	if *warmup > 0 {
		spec.Params.Warmup = *warmup
	}
	if *measure > 0 {
		spec.Params.Measure = *measure
	}
	if err := spec.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	resultsPath := ""
	if *jsonOut {
		dir := *outDir
		if dir == "" {
			dir = "."
		}
		resultsPath = filepath.Join(dir, "results.json")
	}
	sw := &runner.Sweep{
		Spec:        spec,
		Store:       runner.NewStore(*cacheDir),
		ArtifactDir: *outDir,
		ResultsPath: resultsPath,
	}
	if *verbose {
		sw.Progress = os.Stderr
	}
	// SIGINT/SIGTERM cancel the sweep at the next heartbeat interval;
	// completed runs are flushed to results.json instead of being lost.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	outc, err := sw.RunContext(ctx)
	if err != nil {
		if errors.Is(err, context.Canceled) && outc != nil {
			fmt.Fprintf(os.Stderr, "ubsweep: interrupted; %d completed run(s) preserved", len(outc.Results.Runs))
			if resultsPath != "" {
				fmt.Fprintf(os.Stderr, " in %s", resultsPath)
			}
			fmt.Fprintln(os.Stderr)
			return 130
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	for _, eo := range outc.Experiments {
		fmt.Printf("=== %s — %s\n", eo.Experiment.ID, eo.Experiment.Title)
		fmt.Printf("--- paper: %s\n", eo.Experiment.Paper)
		fmt.Println(eo.Output)
		fmt.Printf("(%s in %.1fs)\n\n", eo.Experiment.ID, eo.Seconds)
	}
	if *verbose && resultsPath != "" {
		fmt.Fprintf(os.Stderr, "runner: wrote %s (%d runs)\n", resultsPath, len(outc.Results.Runs))
	}
	return 0
}

// runBench executes the hot-path microbench suite (internal/bench, the
// same cases as `go test -bench HotPath`) and writes the BENCH_*.json
// perf-trajectory artifact, optionally embedding an earlier report as the
// baseline to compare against.
func runBench(outPath, basePath, label string) int {
	if label == "" {
		label = filepath.Base(outPath)
	}
	fmt.Fprintf(os.Stderr, "bench: running hot-path suite (label %s)...\n", label)
	rep := bench.Run(label)
	if basePath != "" {
		base, err := bench.ReadJSON(basePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		rep.Baseline = base.Benches
	}
	if err := rep.WriteJSON(outPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	baseline := map[string]bench.Measurement{}
	for _, m := range rep.Baseline {
		baseline[m.Name] = m
	}
	for _, m := range rep.Benches {
		line := fmt.Sprintf("%-14s %12.1f ns/op %6d allocs/op", m.Name, m.NsPerOp, m.AllocsPerOp)
		if m.NsPerInstr > 0 {
			line += fmt.Sprintf("  %8.1f ns/instr", m.NsPerInstr)
		}
		if b, ok := baseline[m.Name]; ok && m.NsPerOp > 0 {
			line += fmt.Sprintf("  %5.2fx vs baseline", b.NsPerOp/m.NsPerOp)
		}
		fmt.Println(line)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %s\n", outPath)
	return 0
}

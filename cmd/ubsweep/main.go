// Command ubsweep regenerates the paper's tables and figures. Each
// experiment id corresponds to one artifact (see DESIGN.md §4):
//
//	ubsweep -exp fig10                # UBS / 64KB speedups over 32KB
//	ubsweep -exp all -per-family 4    # everything, 4 workloads per family
//	ubsweep -list                     # available experiments
//
// Run lengths default to the scaled-down harness settings; raise -warmup
// and -measure towards the paper's 50M+50M for full-fidelity runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ubscache/internal/exp"
	"ubscache/internal/sim"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id (or 'all')")
		list      = flag.Bool("list", false, "list experiments and exit")
		perFamily = flag.Int("per-family", 0, "workloads per family (0 = all)")
		warmup    = flag.Uint64("warmup", 0, "warmup instructions (0 = default)")
		measure   = flag.Uint64("measure", 0, "measured instructions (0 = default)")
		verbose   = flag.Bool("v", false, "print per-run progress")
	)
	flag.Parse()

	if *list || *expID == "" {
		fmt.Println("experiments:")
		for _, e := range exp.Registry {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
			fmt.Printf("  %-8s paper: %s\n", "", e.Paper)
		}
		if *expID == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nusage: ubsweep -exp <id|all> [-per-family N] [-warmup N] [-measure N]")
			os.Exit(2)
		}
		return
	}

	params := sim.DefaultParams()
	if *warmup > 0 {
		params.Warmup = *warmup
	}
	if *measure > 0 {
		params.Measure = *measure
	}
	opts := exp.Options{Params: params, PerFamily: *perFamily}
	if *verbose {
		opts.Out = os.Stderr
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = exp.IDs()
	}
	runner := exp.NewRunner(opts)
	for _, id := range ids {
		e, err := exp.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		t0 := time.Now()
		out, err := e.Run(runner)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("=== %s — %s\n", e.ID, e.Title)
		fmt.Printf("--- paper: %s\n", e.Paper)
		fmt.Println(out)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
	}
}

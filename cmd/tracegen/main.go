// Command tracegen materialises synthetic workloads into UBST trace files,
// converts foreign trace formats, and inspects existing traces.
//
//	tracegen -list                                # all workload names
//	tracegen -workload server_001 -n 5000000 -o server_001.ubst.gz
//	tracegen convert -i trace.champsim.gz -o trace.ubst.gz
//	tracegen convert -i trace.champsim -o out.ubst -n 1000000
//	tracegen inspect server_001.ubst.gz           # summary statistics
//	tracegen inspect a.champsim b.ubst.gz         # mixed formats by extension
//	tracegen -inspect server_001.ubst.gz          # legacy spelling, still works
//
// Input formats are inferred from the file name: a path containing
// ".champsim" is decoded as a ChampSim trace (64-byte records, optionally
// gzip-compressed); anything else is read as UBST. ChampSim .xz traces must
// be decompressed externally first (the Go standard library has no xz
// codec).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ubscache/internal/trace"
	"ubscache/internal/workload"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "convert":
			runConvert(os.Args[2:])
			return
		case "inspect":
			runInspect(os.Args[2:])
			return
		}
	}
	legacyMain()
}

// runConvert decodes a foreign-format trace (ChampSim by extension) and
// re-encodes it as UBST.
func runConvert(args []string) {
	fs := flag.NewFlagSet("tracegen convert", flag.ExitOnError)
	in := fs.String("i", "", "input trace (.champsim[.gz] decodes as ChampSim, else UBST)")
	out := fs.String("o", "", "output file (.ubst or .ubst.gz)")
	n := fs.Uint64("n", 0, "instruction limit (0 = the whole trace)")
	fs.Parse(args)
	if *in == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "usage: tracegen convert -i <trace> -o <file.ubst[.gz]> [-n N]")
		os.Exit(2)
	}
	src, err := openTrace(*in)
	if err != nil {
		fatal(err)
	}
	defer src.Close()
	var limited trace.Source = src
	if *n > 0 {
		limited = trace.NewLimit(src, *n)
	}
	written, err := trace.WriteAll(*out, limited)
	if err != nil {
		fatal(err)
	}
	if err := src.Err(); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d instructions to %s\n", written, *out)
}

// runInspect summarises one or more trace files, formats inferred per file.
func runInspect(args []string) {
	fs := flag.NewFlagSet("tracegen inspect", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracegen inspect <trace>...")
		os.Exit(2)
	}
	inspectFiles(fs.Args())
}

// traceFile is the common surface of the UBST reader and the ChampSim
// decoder: a Source with an error report and a close.
type traceFile interface {
	trace.Source
	Err() error
	Close() error
}

// openTrace opens path with the decoder its name implies.
func openTrace(path string) (traceFile, error) {
	if strings.Contains(path, ".champsim") {
		return trace.OpenChampSim(path, false)
	}
	return trace.Open(path)
}

// inspectFiles measures each file with one shared BlockSet: the footprint
// map's storage is reset and reused per trace instead of rebuilt per
// invocation.
func inspectFiles(paths []string) {
	var blocks trace.BlockSet
	for _, path := range paths {
		r, err := openTrace(path)
		if err != nil {
			fatal(err)
		}
		st := trace.MeasureInto(r, ^uint64(0), &blocks)
		if err := r.Err(); err != nil {
			r.Close()
			fatal(err)
		}
		r.Close()
		printStats(path, st)
	}
}

// legacyMain is the original flag-based interface, preserved verbatim for
// existing scripts.
func legacyMain() {
	var (
		list    = flag.Bool("list", false, "list workload names and exit")
		wl      = flag.String("workload", "", "workload to materialise")
		n       = flag.Uint64("n", 1_000_000, "instructions to emit")
		out     = flag.String("o", "", "output file (.ubst or .ubst.gz)")
		inspect = flag.String("inspect", "", "trace file to summarise")
	)
	flag.Parse()

	switch {
	case *list:
		for _, fam := range workload.Families() {
			fmt.Printf("%s (%d):", fam, workload.FamilyCounts[fam])
			for _, name := range workload.Names(fam) {
				fmt.Printf(" %s", name)
			}
			fmt.Println()
		}
	case *inspect != "":
		inspectFiles(append([]string{*inspect}, flag.Args()...))
	case *wl != "":
		cfg, err := workload.ByName(*wl)
		if err != nil {
			fatal(err)
		}
		w, err := workload.New(cfg)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			// Dry run: just measure.
			var blocks trace.BlockSet
			st := trace.MeasureInto(w, *n, &blocks)
			printStats(*wl, st)
			return
		}
		written, err := trace.WriteAll(*out, trace.NewLimit(w, *n))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d instructions to %s\n", written, *out)
	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -list | -workload <name> [-n N] [-o file] | convert -i <trace> -o <file> | inspect <file>...")
		os.Exit(2)
	}
}

func printStats(name string, st trace.Stats) {
	fmt.Printf("%s: %d instructions\n", name, st.Count)
	fmt.Printf("  branches: %d (%.1f%%), taken %.1f%%, conditional %d, calls %d, returns %d\n",
		st.Branches, 100*float64(st.Branches)/float64(st.Count),
		100*float64(st.Taken)/float64(st.Branches), st.Conditional, st.Calls, st.Returns)
	fmt.Printf("  loads: %d  stores: %d\n", st.Loads, st.Stores)
	fmt.Printf("  PC range: [%#x, %#x]  code footprint: %d KB (%d blocks)\n",
		st.MinPC, st.MaxPC, st.Footprint()>>10, st.UniqueBlocks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// Command tracegen materialises synthetic workloads into UBST trace files
// and inspects existing traces.
//
//	tracegen -list                                # all workload names
//	tracegen -workload server_001 -n 5000000 -o server_001.ubst.gz
//	tracegen -inspect server_001.ubst.gz          # summary statistics
//	tracegen -inspect a.ubst b.ubst.gz            # extra files as args
package main

import (
	"flag"
	"fmt"
	"os"

	"ubscache/internal/trace"
	"ubscache/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list workload names and exit")
		wl      = flag.String("workload", "", "workload to materialise")
		n       = flag.Uint64("n", 1_000_000, "instructions to emit")
		out     = flag.String("o", "", "output file (.ubst or .ubst.gz)")
		inspect = flag.String("inspect", "", "trace file to summarise")
	)
	flag.Parse()

	switch {
	case *list:
		for _, fam := range workload.Families() {
			fmt.Printf("%s (%d):", fam, workload.FamilyCounts[fam])
			for _, name := range workload.Names(fam) {
				fmt.Printf(" %s", name)
			}
			fmt.Println()
		}
	case *inspect != "":
		// One BlockSet serves every file: the footprint map's storage is
		// reset and reused per trace instead of rebuilt per invocation.
		var blocks trace.BlockSet
		for _, path := range append([]string{*inspect}, flag.Args()...) {
			r, err := trace.Open(path)
			if err != nil {
				fatal(err)
			}
			st := trace.MeasureInto(r, ^uint64(0), &blocks)
			if err := r.Err(); err != nil {
				r.Close()
				fatal(err)
			}
			r.Close()
			printStats(path, st)
		}
	case *wl != "":
		cfg, err := workload.ByName(*wl)
		if err != nil {
			fatal(err)
		}
		w, err := workload.New(cfg)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			// Dry run: just measure.
			var blocks trace.BlockSet
			st := trace.MeasureInto(w, *n, &blocks)
			printStats(*wl, st)
			return
		}
		written, err := trace.WriteAll(*out, trace.NewLimit(w, *n))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d instructions to %s\n", written, *out)
	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -list | -workload <name> [-n N] [-o file] | -inspect <file>")
		os.Exit(2)
	}
}

func printStats(name string, st trace.Stats) {
	fmt.Printf("%s: %d instructions\n", name, st.Count)
	fmt.Printf("  branches: %d (%.1f%%), taken %.1f%%, conditional %d, calls %d, returns %d\n",
		st.Branches, 100*float64(st.Branches)/float64(st.Count),
		100*float64(st.Taken)/float64(st.Branches), st.Conditional, st.Calls, st.Returns)
	fmt.Printf("  loads: %d  stores: %d\n", st.Loads, st.Stores)
	fmt.Printf("  PC range: [%#x, %#x]  code footprint: %d KB (%d blocks)\n",
		st.MinPC, st.MaxPC, st.Footprint()>>10, st.UniqueBlocks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

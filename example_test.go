package ubscache_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"ubscache"
)

// Example demonstrates the basic simulate-and-compare flow on a tiny run.
func Example() {
	w, err := ubscache.Workload("spec_001")
	if err != nil {
		log.Fatal(err)
	}
	opts := ubscache.Quick()
	opts.Warmup = 20_000
	opts.Measure = 50_000

	rep, err := ubscache.Simulate(ubscache.UBS(), w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Workload, rep.Design, rep.Core.Instructions >= 50_000)
	// Output:
	// spec_001 ubs true
}

// ExampleSimulateContext runs a simulation under a context deadline; the
// run is cancelled between heartbeat intervals if the deadline expires.
func ExampleSimulateContext() {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	w, err := ubscache.Workload("client_001")
	if err != nil {
		log.Fatal(err)
	}
	opts := ubscache.Quick()
	opts.Warmup = 20_000
	opts.Measure = 50_000

	rep, err := ubscache.SimulateContext(ctx, ubscache.UBS(), w, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Design, rep.Core.Instructions >= 50_000)
	// Output:
	// ubs true
}

// ExampleRunExperiment regenerates one paper artifact with the
// options-first experiment API.
func ExampleRunExperiment() {
	opts := ubscache.Quick()
	opts.Warmup = 20_000
	opts.Measure = 50_000

	out, err := ubscache.RunExperiment("table2", ubscache.ExperimentOptions{
		Options:   opts,
		PerFamily: 1, // one workload per family keeps the run short
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out) > 0)
	// Output:
	// true
}

// ExampleParseDesign resolves designs through the registry: shorthand
// names (the `ubsim -design` grammar) and declarative JSON specs both
// reach the same registered builders.
func ExampleParseDesign() {
	d, err := ubscache.ParseDesign("ubs:64")
	if err != nil {
		log.Fatal(err)
	}
	inline, err := ubscache.ParseDesign(`{"kind":"conv","config":{"policy":"ghrp"}}`)
	if err != nil {
		log.Fatal(err)
	}
	spec := ubscache.DesignSpec{Kind: "smallblock", Config: []byte(`{"block_size":32}`)}
	sb, err := ubscache.ResolveDesign(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Name, inline.Name, sb.Name)
	fmt.Println(ubscache.DesignKinds())
	// Output:
	// ubs-64KB ghrp conv-32B-block
	// [conv distill smallblock ubs]
}

// ExampleUBSCustom shows how to explore a non-default UBS configuration.
func ExampleUBSCustom() {
	cfg := ubscache.DefaultUBSConfig()
	cfg.Name = "my-ubs"
	cfg.WaySizes = []int{8, 16, 32, 64, 64}
	cfg.PlacementWindow = 2
	if err := cfg.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(cfg.Name, len(cfg.WaySizes), cfg.DataBytesPerSet())
	// Output:
	// my-ubs 5 184
}

// ExampleParseWorkload resolves workloads through the registry —
// symmetric to ExampleParseDesign: shorthand names (the `ubsim -workload`
// grammar) and declarative JSON specs both reach the same registered
// builders. A bare preset name remains a valid shorthand.
func ExampleParseWorkload() {
	w, err := ubscache.ParseWorkload("preset:server_003")
	if err != nil {
		log.Fatal(err)
	}
	bare, err := ubscache.ParseWorkload("server_003")
	if err != nil {
		log.Fatal(err)
	}
	spec := ubscache.WorkloadSpec{Kind: "mix", Config: []byte(`{
		"seed": 7,
		"clients": [
			{"preset": "server_001", "weight": 2, "arrival": {"process": "poisson"}},
			{"preset": "client_001", "arrival": {"process": "gamma", "cv": 3}}
		]
	}`)}
	mix, err := ubscache.ResolveWorkload(spec)
	if err != nil {
		log.Fatal(err)
	}
	_, generator := w.Config()
	fmt.Println(w.Name, w.Name == bare.Name, generator)
	fmt.Println(mix.Spec.Kind, len(mix.Name) > 0)
	fmt.Println(ubscache.WorkloadKinds())
	// Output:
	// server_003 true true
	// mix true
	// [champsim config mix preset trace]
}

// ExampleWorkloadNames lists the preset server workloads.
func ExampleWorkloadNames() {
	names := ubscache.WorkloadNames(ubscache.FamilyServer)
	fmt.Println(names[0], names[1], len(names) >= 8)
	// Output:
	// server_001 server_002 true
}

// ExampleNewSource streams raw instructions from a workload.
func ExampleNewSource() {
	w, err := ubscache.Workload("client_001")
	if err != nil {
		log.Fatal(err)
	}
	src, err := ubscache.NewSource(w)
	if err != nil {
		log.Fatal(err)
	}
	in, ok := src.Next()
	fmt.Println(ok, in.Size, in.PC != 0)
	// Output:
	// true 4 true
}

package ubscache

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ubscache/internal/icache"
	"ubscache/internal/serve"
	"ubscache/internal/sim"
)

func quickTest() Options {
	p := Quick()
	p.Warmup = 50_000
	p.Measure = 150_000
	return p
}

func TestWorkloadResolution(t *testing.T) {
	w, err := Workload("server_001")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "server_001" {
		t.Errorf("name %q", w.Name)
	}
	if _, err := Workload("bogus"); err == nil {
		t.Error("bogus workload accepted")
	}
	if len(Families()) != 8 {
		t.Errorf("families: %v", Families())
	}
	if len(WorkloadNames(FamilyServer)) == 0 {
		t.Error("no server workloads")
	}
}

// TestConventional32IsTableIBaseline pins that the generic size-derived
// Conventional(32) is exactly the paper's Table I baseline — the special
// case that used to hardwire kb==32 to Baseline32K is gone, so the
// equivalence must hold by construction (same geometry, same name, same
// simulation results).
func TestConventional32IsTableIBaseline(t *testing.T) {
	sized := icache.ConvSized(32 << 10)
	base := icache.Baseline32K()
	if sized.Name != base.Name || sized.Sets != base.Sets || sized.Ways != base.Ways ||
		sized.BlockSize != base.BlockSize || sized.Lat != base.Lat || sized.MSHRs != base.MSHRs {
		t.Fatalf("ConvSized(32KB) = %+v, want Table I baseline %+v", sized, base)
	}
	d := Conventional(32)
	if d.Name != "conv-32KB" {
		t.Fatalf("Conventional(32).Name = %q", d.Name)
	}

	w, err := Workload("server_001")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(d, w, quickTest())
	if err != nil {
		t.Fatal(err)
	}
	want, err := Simulate(Design{base.Name, sim.ConvFactory(base)}, w, quickTest())
	if err != nil {
		t.Fatal(err)
	}
	if got.Core != want.Core || got.ICache != want.ICache {
		t.Errorf("Conventional(32) diverges from Baseline32K:\ngot  %+v\nwant %+v", got.Core, want.Core)
	}
}

func TestSimulateUBSvsBaseline(t *testing.T) {
	w, err := Workload("server_001")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Simulate(Conventional(32), w, quickTest())
	if err != nil {
		t.Fatal(err)
	}
	u, err := Simulate(UBS(), w, quickTest())
	if err != nil {
		t.Fatal(err)
	}
	if base.IPC() <= 0 || u.IPC() <= 0 {
		t.Fatalf("IPC base=%f ubs=%f", base.IPC(), u.IPC())
	}
	// The paper's core claim at the library level: UBS has far better
	// storage efficiency than the conventional baseline.
	be := avg(base.EffSamples)
	ue := avg(u.EffSamples)
	if ue <= be+0.15 {
		t.Errorf("UBS efficiency %.2f not clearly above baseline %.2f", ue, be)
	}
	if u.UBS == nil {
		t.Error("UBS report missing extended stats")
	}
}

func avg(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if len(v) == 0 {
		return 0
	}
	return s / float64(len(v))
}

func TestAllDesignsRun(t *testing.T) {
	w, err := Workload("client_001")
	if err != nil {
		t.Fatal(err)
	}
	designs := []Design{
		Conventional(16), Conventional(32), Conventional(64),
		UBS(), UBSSized(20), SmallBlock(16), SmallBlock(32),
		LineDistillation(), GHRP(), ACIC(),
		UBSCustom(DefaultUBSConfig()),
	}
	opts := quickTest()
	opts.Warmup = 20_000
	opts.Measure = 60_000
	for _, d := range designs {
		rep, err := Simulate(d, w, opts)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if rep.IPC() <= 0 || rep.IPC() > 4 {
			t.Errorf("%s: IPC %f implausible", d.Name, rep.IPC())
		}
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	w, err := Workload("spec_001")
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSource(w)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.ubst.gz")
	n, err := WriteTrace(path, src, 50_000)
	if err != nil || n != 50_000 {
		t.Fatalf("WriteTrace: %d, %v", n, err)
	}
	r, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	opts := quickTest()
	opts.Warmup = 10_000
	opts.Measure = 20_000
	rep, err := SimulateSource(Conventional(32), r, "t", opts)
	if err != nil {
		t.Fatal(err)
	}
	// Commit is 4-wide, so the run may overshoot by up to 3 instructions.
	if rep.Core.Instructions < 20_000 || rep.Core.Instructions > 20_003 {
		t.Errorf("retired %d", rep.Core.Instructions)
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) < 17 {
		t.Fatalf("only %d experiments", len(ids))
	}
	out, err := RunExperiment("table2", ExperimentOptions{Options: quickTest(), PerFamily: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "4, 4, 8, 8, 8, 12, 12, 16, 24, 32, 36, 36, 52, 64, 64, 64") {
		t.Errorf("table2 output:\n%s", out)
	}
	if _, err := RunExperiment("nope", ExperimentOptions{Options: quickTest(), PerFamily: 1}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestJobServerFacade runs a real (tiny) simulation job through the
// facade's job server: submit, wait for the terminal state, read the
// report, and confirm a duplicate submission is served from the cache.
func TestJobServerFacade(t *testing.T) {
	srv := NewJobServer(JobServerConfig{
		Store:   NewResultStore(""),
		Workers: 2,
		Params:  quickTest(),
	})
	defer srv.Close()

	req := serve.SubmitRequest{Design: "conv:32", Workload: "server_001", Priority: serve.Interactive}
	sub, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, sub)
	if st.State != serve.JobDone {
		t.Fatalf("job ended %s (%s)", st.State, st.Error)
	}
	rep, raw, ok := sub.Result()
	if !ok || rep.Core.Instructions == 0 || len(raw) == 0 {
		t.Fatalf("no usable report: ok=%v %+v", ok, rep)
	}

	dup, err := srv.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Key() != sub.Key() {
		t.Fatalf("duplicate submission key %s != %s", dup.Key(), sub.Key())
	}
	if st := waitTerminal(t, dup); st.State != serve.JobDone || !st.FromCache {
		t.Fatalf("duplicate ended %s, from_cache=%v; want done from cache", st.State, st.FromCache)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func waitTerminal(t *testing.T, j *serve.Job) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if st := j.Status(); st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", j.ID())
	return serve.JobStatus{}
}
